package trafficmgr

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/txn"
	"repro/internal/units"
)

func gbps(v float64) units.Bandwidth { return units.GBps(v) }

func approx(a, b units.Bandwidth, tol float64) bool {
	return math.Abs(a.GBpsValue()-b.GBpsValue()) <= tol
}

func TestAllocateUndersubscribed(t *testing.T) {
	// Everyone below capacity gets their demand.
	got := Allocate([]FlowSpec{
		{Demand: gbps(6), Weight: 1, Resources: []int{0}},
		{Demand: gbps(10), Weight: 1, Resources: []int{0}},
	}, []units.Bandwidth{gbps(20)})
	if !approx(got[0], gbps(6), 0.01) || !approx(got[1], gbps(10), 0.01) {
		t.Errorf("alloc = %v", got)
	}
}

func TestAllocateEqualSplit(t *testing.T) {
	got := Allocate([]FlowSpec{
		{Demand: gbps(30), Weight: 1, Resources: []int{0}},
		{Demand: gbps(30), Weight: 1, Resources: []int{0}},
	}, []units.Bandwidth{gbps(20)})
	if !approx(got[0], gbps(10), 0.05) || !approx(got[1], gbps(10), 0.05) {
		t.Errorf("alloc = %v", got)
	}
}

func TestAllocateMaxMinHonorsSmallDemand(t *testing.T) {
	// The fix for Fig 4 case 2: the modest flow gets its full demand,
	// the aggressor only the remainder — not the other way around.
	got := Allocate([]FlowSpec{
		{Demand: gbps(6), Weight: 1, Resources: []int{0}},
		{Demand: gbps(50), Weight: 1, Resources: []int{0}},
	}, []units.Bandwidth{gbps(20)})
	if !approx(got[0], gbps(6), 0.05) {
		t.Errorf("modest flow alloc = %v, want its demand 6", got[0])
	}
	if !approx(got[1], gbps(14), 0.1) {
		t.Errorf("aggressor alloc = %v, want the remainder 14", got[1])
	}
}

func TestAllocateUnboundedDemands(t *testing.T) {
	got := Allocate([]FlowSpec{
		{Weight: 1, Resources: []int{0}},
		{Weight: 1, Resources: []int{0}},
		{Weight: 1, Resources: []int{0}},
	}, []units.Bandwidth{gbps(30)})
	for i, a := range got {
		if !approx(a, gbps(10), 0.05) {
			t.Errorf("flow %d alloc = %v, want 10", i, a)
		}
	}
}

func TestAllocateWeighted(t *testing.T) {
	got := Allocate([]FlowSpec{
		{Weight: 1, Resources: []int{0}},
		{Weight: 3, Resources: []int{0}},
	}, []units.Bandwidth{gbps(20)})
	if !approx(got[0], gbps(5), 0.1) || !approx(got[1], gbps(15), 0.1) {
		t.Errorf("weighted alloc = %v, want 5/15", got)
	}
}

func TestAllocateMultiResource(t *testing.T) {
	// Flow 0 crosses both links; flow 1 only the second. Link 0 caps
	// flow 0 at 8; flow 1 then takes the rest of link 1.
	got := Allocate([]FlowSpec{
		{Weight: 1, Resources: []int{0, 1}},
		{Weight: 1, Resources: []int{1}},
	}, []units.Bandwidth{gbps(8), gbps(30)})
	if !approx(got[0], gbps(8), 0.1) {
		t.Errorf("flow 0 = %v, want 8 (link-0 bound)", got[0])
	}
	if !approx(got[1], gbps(22), 0.1) {
		t.Errorf("flow 1 = %v, want 22 (residual of link 1)", got[1])
	}
}

func TestAllocateNoFlows(t *testing.T) {
	if got := Allocate(nil, []units.Bandwidth{gbps(10)}); len(got) != 0 {
		t.Errorf("alloc of no flows = %v", got)
	}
}

func TestAllocatePanicsOnBadResource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Allocate([]FlowSpec{{Weight: 1, Resources: []int{5}}}, []units.Bandwidth{gbps(10)})
}

// Properties: allocations never exceed demand, never oversubscribe a
// resource, and are work-conserving for a single resource (the full
// capacity is used whenever aggregate demand allows).
func TestAllocateProperties(t *testing.T) {
	f := func(demandsRaw []uint16, capRaw uint32) bool {
		if len(demandsRaw) == 0 || len(demandsRaw) > 12 {
			return true
		}
		cap := units.Bandwidth(uint64(capRaw)%uint64(40*units.GB) + uint64(units.GB))
		flows := make([]FlowSpec, len(demandsRaw))
		var total units.Bandwidth
		for i, d := range demandsRaw {
			flows[i] = FlowSpec{
				Demand:    units.Bandwidth(d) * units.Bandwidth(units.MB),
				Weight:    1,
				Resources: []int{0},
			}
			total += flows[i].Demand
		}
		got := Allocate(flows, []units.Bandwidth{cap})
		var sum units.Bandwidth
		for i, a := range got {
			if flows[i].Demand > 0 && a > flows[i].Demand+units.Bandwidth(units.KB) {
				return false
			}
			if a < 0 {
				return false
			}
			sum += a
		}
		if sum > cap+units.Bandwidth(units.MB) {
			return false
		}
		want := total
		if cap < want {
			want = cap
		}
		// Work conservation within rounding slack.
		return sum >= want-units.Bandwidth(len(flows))*units.Bandwidth(units.MB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestManagerLifecycle(t *testing.T) {
	eng := sim.New(1)
	p := topology.EPYC7302()
	net := core.New(eng, p)
	mk := func(name string, ccx int, demand float64) *traffic.Flow {
		return traffic.MustFlow(net, traffic.FlowConfig{
			Name: name, Op: txn.Read, Kind: core.DestDRAM, UMCs: []int{0},
			Cores: []topology.CoreID{
				{CCD: 0, CCX: ccx, Core: 0}, {CCD: 0, CCX: ccx, Core: 1}},
			Demand: units.GBps(demand),
		})
	}
	fa := mk("A", 0, 6)
	fb := mk("B", 1, 30)

	m := New(eng, 20*units.Microsecond, MaxMinFair)
	m.AddResource("umc0/rd", p.UMCReadCap)
	if err := m.Register(fa, "umc0/rd"); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(fb, "umc0/rd"); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(fb, "nope"); err == nil {
		t.Fatal("unknown resource should be rejected")
	}
	if err := m.Register(nil, "umc0/rd"); err == nil {
		t.Fatal("nil flow should be rejected")
	}
	if err := m.RegisterWeighted(fb, -1, "umc0/rd"); err == nil {
		t.Fatal("negative weight should be rejected")
	}
	if err := m.Register(fb); err == nil {
		t.Fatal("no resources should be rejected")
	}

	fa.Start()
	fb.Start()
	m.Start()
	eng.RunFor(50 * units.Microsecond)
	fa.ResetStats()
	fb.ResetStats()
	eng.RunFor(100 * units.Microsecond)

	// Under max-min management, the modest flow gets its full demand and
	// the aggressor is limited to the residual 21.1-6 = 15.1.
	a, b := fa.Achieved().GBpsValue(), fb.Achieved().GBpsValue()
	if a < 5.4 || a > 6.6 {
		t.Errorf("managed modest flow = %.1f GB/s, want ~6", a)
	}
	if b < 13.5 || b > 16.2 {
		t.Errorf("managed aggressor = %.1f GB/s, want ~15.1", b)
	}

	allocs := m.Allocations()
	if !approx(allocs["A"], gbps(6), 0.2) {
		t.Errorf("allocation A = %v", allocs["A"])
	}
	if got := m.Resources(); len(got) != 1 || got[0] != "umc0/rd" {
		t.Errorf("Resources = %v", got)
	}

	m.Stop()
	if fa.RateLimit() != 0 || fb.RateLimit() != 0 {
		t.Error("Stop should clear rate limits")
	}
}

func TestManagerPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil engine": func() { New(nil, units.Microsecond, MaxMinFair) },
		"zero epoch": func() { New(sim.New(1), 0, MaxMinFair) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPolicyString(t *testing.T) {
	if MaxMinFair.String() != "max-min-fair" || WeightedFair.String() != "weighted-fair" {
		t.Error("policy names wrong")
	}
}

func TestManagerWeightedPolicy(t *testing.T) {
	eng := sim.New(1)
	p := topology.EPYC7302()
	net := core.New(eng, p)
	mk := func(name string, ccx int) *traffic.Flow {
		return traffic.MustFlow(net, traffic.FlowConfig{
			Name: name, Op: txn.Read, Kind: core.DestDRAM, UMCs: []int{0},
			Cores: []topology.CoreID{
				{CCD: 0, CCX: ccx, Core: 0}, {CCD: 0, CCX: ccx, Core: 1}},
			Demand: units.GBps(30),
		})
	}
	fa, fb := mk("A", 0), mk("B", 1)
	m := New(eng, 20*units.Microsecond, WeightedFair)
	m.AddResource("umc0/rd", p.UMCReadCap)
	if err := m.RegisterWeighted(fa, 1, "umc0/rd"); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterWeighted(fb, 2, "umc0/rd"); err != nil {
		t.Fatal(err)
	}
	allocs := m.Allocations()
	ratio := allocs["B"].GBpsValue() / allocs["A"].GBpsValue()
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("weighted allocation ratio = %.2f, want 2", ratio)
	}
}
