package txn

// Pool is a plain free-list of Transactions. It is intentionally not a
// sync.Pool: each simulation engine is single-threaded, so an unlocked
// slice costs nothing, never drops objects under GC pressure, and keeps
// replay deterministic (reuse order is a pure function of the event
// sequence).
type Pool struct {
	free []*Transaction
}

// Get returns a zeroed transaction, reusing a recycled one when available.
func (p *Pool) Get() *Transaction {
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return t
	}
	return &Transaction{}
}

// Put recycles a completed transaction. Pinned transactions are left
// untouched and stay out of the free list — that is the opt-out for
// consumers that retain the pointer past their done callback.
func (p *Pool) Put(t *Transaction) {
	if t == nil || t.pinned {
		return
	}
	*t = Transaction{}
	p.free = append(p.free, t)
}
