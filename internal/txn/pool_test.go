package txn

import (
	"testing"

	"repro/internal/units"
)

func TestPoolReusesAndZeroes(t *testing.T) {
	var p Pool
	a := p.Get()
	a.ID = 7
	a.Size = units.CacheLine
	a.Issued = 100
	p.Put(a)
	b := p.Get()
	if b != a {
		t.Fatal("Get should pop the recycled transaction")
	}
	if b.ID != 0 || b.Size != 0 || b.Issued != 0 {
		t.Errorf("recycled transaction not zeroed: %+v", b)
	}
	if c := p.Get(); c == a {
		t.Error("free list returned the same object twice")
	}
}

func TestPoolSkipsPinned(t *testing.T) {
	var p Pool
	a := p.Get()
	a.ID = 9
	a.Pin()
	if !a.Pinned() {
		t.Fatal("Pin did not stick")
	}
	p.Put(a)
	if b := p.Get(); b == a {
		t.Error("pinned transaction was recycled")
	}
	if a.ID != 9 {
		t.Error("pinned transaction was zeroed")
	}
}

func TestPoolPutNil(t *testing.T) {
	var p Pool
	p.Put(nil) // must not panic
	if got := p.Get(); got == nil {
		t.Fatal("Get returned nil")
	}
}
