// Package txn defines the transaction (L3) layer of server chiplet
// networking: the operations, endpoints, flows and transactions that ride
// the link layer. The design follows the gopacket Endpoint/Flow idiom —
// an Endpoint is a typed address, a Flow an ordered (src, dst) pair — so
// telemetry, the traffic manager, and the profiler can key state by flow.
//
// Per the paper (§2.3), transactions move at cacheline granularity on the
// coherent fabric and at FLIT granularity (68/256 B) on the CXL path.
package txn

import (
	"fmt"

	"repro/internal/topology"
	"repro/internal/units"
)

// Op is a transaction operation.
type Op int

// Operations the micro-benchmark utility generates (§3.1): reads, regular
// (temporal, allocate-on-write) stores and non-temporal streaming stores.
const (
	Read Op = iota
	Write
	NTWrite
)

var opNames = [...]string{"read", "write", "ntwrite"}

func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// IsWrite reports whether the operation moves data toward memory.
func (o Op) IsWrite() bool { return o == Write || o == NTWrite }

// EndpointKind types an Endpoint.
type EndpointKind int

// Endpoint kinds: traffic sources are cores; destinations are LLC slices,
// memory channels, or CXL modules.
const (
	CoreEndpoint EndpointKind = iota
	LLCEndpoint
	DRAMEndpoint
	CXLEndpoint
)

var endpointKindNames = [...]string{"core", "llc", "dram", "cxl"}

func (k EndpointKind) String() string {
	if k < 0 || int(k) >= len(endpointKindNames) {
		return fmt.Sprintf("endpoint(%d)", int(k))
	}
	return endpointKindNames[k]
}

// Endpoint is a typed address in the chiplet network.
type Endpoint struct {
	Kind EndpointKind
	// Address components; meaning depends on Kind:
	//   CoreEndpoint: CCD/CCX/Core indices
	//   LLCEndpoint:  CCD/CCX indices (Core unused)
	//   DRAMEndpoint: CCD = UMC channel (CCX/Core unused)
	//   CXLEndpoint:  CCD = module index (CCX/Core unused)
	CCD, CCX, Core int
}

// CoreEP builds a core endpoint.
func CoreEP(id topology.CoreID) Endpoint {
	return Endpoint{Kind: CoreEndpoint, CCD: id.CCD, CCX: id.CCX, Core: id.Core}
}

// LLCEP builds an LLC-slice endpoint.
func LLCEP(id topology.CCXID) Endpoint {
	return Endpoint{Kind: LLCEndpoint, CCD: id.CCD, CCX: id.CCX}
}

// DRAMEP builds a memory-channel endpoint.
func DRAMEP(umc int) Endpoint { return Endpoint{Kind: DRAMEndpoint, CCD: umc} }

// CXLEP builds a CXL-module endpoint.
func CXLEP(module int) Endpoint { return Endpoint{Kind: CXLEndpoint, CCD: module} }

// CoreID recovers the core address of a core endpoint; it panics on other
// kinds.
func (e Endpoint) CoreID() topology.CoreID {
	if e.Kind != CoreEndpoint {
		panic(fmt.Sprintf("txn: CoreID of %v endpoint", e.Kind))
	}
	return topology.CoreID{CCD: e.CCD, CCX: e.CCX, Core: e.Core}
}

func (e Endpoint) String() string {
	switch e.Kind {
	case CoreEndpoint:
		return fmt.Sprintf("core:ccd%d/ccx%d/core%d", e.CCD, e.CCX, e.Core)
	case LLCEndpoint:
		return fmt.Sprintf("llc:ccd%d/ccx%d", e.CCD, e.CCX)
	case DRAMEndpoint:
		return fmt.Sprintf("dram:umc%d", e.CCD)
	case CXLEndpoint:
		return fmt.Sprintf("cxl:mod%d", e.CCD)
	default:
		return fmt.Sprintf("endpoint(%d)", int(e.Kind))
	}
}

// Flow is an ordered source/destination endpoint pair — the communication
// flow abstraction the paper's Implication #4 argues the chiplet network
// should expose.
type Flow struct {
	Src, Dst Endpoint
}

// Reverse reports the flow in the opposite direction (the response path).
func (f Flow) Reverse() Flow { return Flow{Src: f.Dst, Dst: f.Src} }

func (f Flow) String() string { return f.Src.String() + " -> " + f.Dst.String() }

// Transaction is one in-flight operation at the transaction layer.
//
// Completed transactions handed to a done callback are recycled through a
// Pool once the callback returns: a consumer that wants to keep the
// transaction past its callback must either copy the struct or call Pin.
type Transaction struct {
	ID        uint64
	Op        Op
	Flow      Flow
	Size      units.ByteSize
	Issued    units.Time
	Completed units.Time

	pinned bool
}

// Pin excludes the transaction from free-list recycling, so a consumer
// that retains the pointer past its done callback keeps a stable value.
func (t *Transaction) Pin() { t.pinned = true }

// Pinned reports whether Pin was called.
func (t *Transaction) Pinned() bool { return t.pinned }

// Latency reports the completion latency; zero until completed.
func (t *Transaction) Latency() units.Time {
	if t.Completed < t.Issued {
		return 0
	}
	return t.Completed - t.Issued
}

func (t *Transaction) String() string {
	return fmt.Sprintf("txn#%d %v %v %v", t.ID, t.Op, t.Flow, t.Size)
}
