package txn

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/units"
)

func TestOpStrings(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || NTWrite.String() != "ntwrite" {
		t.Error("op names wrong")
	}
	if Op(9).String() != "op(9)" {
		t.Error("out-of-range op name wrong")
	}
	if Read.IsWrite() {
		t.Error("read is not a write")
	}
	if !Write.IsWrite() || !NTWrite.IsWrite() {
		t.Error("writes should report IsWrite")
	}
}

func TestEndpointStrings(t *testing.T) {
	cases := map[string]Endpoint{
		"core:ccd1/ccx0/core3": CoreEP(topology.CoreID{CCD: 1, CCX: 0, Core: 3}),
		"llc:ccd2/ccx1":        LLCEP(topology.CCXID{CCD: 2, CCX: 1}),
		"dram:umc5":            DRAMEP(5),
		"cxl:mod2":             CXLEP(2),
	}
	for want, ep := range cases {
		if got := ep.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if EndpointKind(7).String() != "endpoint(7)" {
		t.Error("out-of-range kind name wrong")
	}
	if CoreEndpoint.String() != "core" || CXLEndpoint.String() != "cxl" {
		t.Error("kind names wrong")
	}
}

func TestCoreIDRoundTrip(t *testing.T) {
	id := topology.CoreID{CCD: 2, CCX: 1, Core: 6}
	if got := CoreEP(id).CoreID(); got != id {
		t.Errorf("round trip = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("CoreID of non-core endpoint should panic")
		}
	}()
	DRAMEP(0).CoreID()
}

func TestFlowReverse(t *testing.T) {
	f := Flow{Src: CoreEP(topology.CoreID{}), Dst: DRAMEP(3)}
	r := f.Reverse()
	if r.Src != f.Dst || r.Dst != f.Src {
		t.Error("Reverse is wrong")
	}
	if r.Reverse() != f {
		t.Error("double Reverse should be identity")
	}
	if f.String() != "core:ccd0/ccx0/core0 -> dram:umc3" {
		t.Errorf("Flow.String() = %q", f.String())
	}
}

func TestTransactionLatency(t *testing.T) {
	tx := &Transaction{ID: 1, Op: Read, Size: units.CacheLine, Issued: 100}
	if tx.Latency() != 0 {
		t.Error("incomplete transaction should report zero latency")
	}
	tx.Completed = 350
	if tx.Latency() != 250 {
		t.Errorf("Latency = %v", tx.Latency())
	}
	if tx.String() == "" {
		t.Error("String should render")
	}
}
