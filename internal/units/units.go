// Package units defines the physical quantities used throughout the
// chiplet-network simulator: simulated time at picosecond resolution,
// byte counts, and link bandwidth.
//
// Simulated time is deliberately not time.Duration: the simulator needs
// sub-nanosecond resolution (an L1 hit on the EPYC 9634 is 1.19 ns) and a
// distinct type keeps wall-clock time from leaking into simulation logic.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Time is a point in, or span of, simulated time measured in picoseconds.
// An int64 of picoseconds covers about 106 days of simulated time, far
// beyond any experiment in this repository.
type Time int64

// Common spans of simulated time.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds reports t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanos builds a Time from a floating-point nanosecond count, rounding to
// the nearest picosecond.
func Nanos(ns float64) Time { return Time(math.Round(ns * float64(Nanosecond))) }

// Micros builds a Time from a floating-point microsecond count.
func Micros(us float64) Time { return Time(math.Round(us * float64(Microsecond))) }

// String renders t using the largest unit that keeps the value >= 1,
// e.g. "1.24ns", "34.3ns", "1.5us".
func (t Time) String() string {
	switch abs := t; {
	case abs < 0:
		return "-" + (-t).String()
	case abs == 0:
		return "0s"
	case abs < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case abs < Microsecond:
		return trimFloat(t.Nanoseconds()) + "ns"
	case abs < Millisecond:
		return trimFloat(t.Microseconds()) + "us"
	case abs < Second:
		return trimFloat(float64(t)/float64(Millisecond)) + "ms"
	default:
		return trimFloat(t.Seconds()) + "s"
	}
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 3, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s
}

// ByteSize is a count of bytes. Cache capacities use binary multiples
// (KiB, MiB); bandwidth and transfer volumes use the decimal multiples the
// paper reports (GB = 1e9 bytes).
type ByteSize int64

// Binary multiples, used for cache and working-set sizes.
const (
	Byte ByteSize = 1
	KiB  ByteSize = 1024 * Byte
	MiB  ByteSize = 1024 * KiB
	GiB  ByteSize = 1024 * MiB
)

// Decimal multiples, used for transfer volumes and bandwidth.
const (
	KB ByteSize = 1000 * Byte
	MB ByteSize = 1000 * KB
	GB ByteSize = 1000 * MB
)

// CacheLine is the transfer granularity of every load/store interconnect
// in the modelled platforms.
const CacheLine ByteSize = 64

// String renders the size with a binary suffix when it divides evenly
// (cache sizes) and a decimal suffix otherwise.
func (b ByteSize) String() string {
	switch {
	case b < 0:
		return "-" + (-b).String()
	case b >= GB && b%GB == 0:
		return fmt.Sprintf("%dGB", b/GB)
	case b >= GiB && b%GiB == 0:
		return fmt.Sprintf("%dGiB", b/GiB)
	case b >= MiB && b%MiB == 0:
		return fmt.Sprintf("%dMiB", b/MiB)
	case b >= KiB && b%KiB == 0:
		return fmt.Sprintf("%dKiB", b/KiB)
	case b >= GB:
		return trimFloat(float64(b)/float64(GB)) + "GB"
	case b >= MB:
		return trimFloat(float64(b)/float64(MB)) + "MB"
	case b >= KB:
		return trimFloat(float64(b)/float64(KB)) + "KB"
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// Bandwidth is a data rate in bytes per second.
type Bandwidth int64

// GBps builds a Bandwidth from the paper's customary unit, decimal
// gigabytes per second.
func GBps(v float64) Bandwidth { return Bandwidth(math.Round(v * 1e9)) }

// GBpsValue reports bw in decimal gigabytes per second.
func (bw Bandwidth) GBpsValue() float64 { return float64(bw) / 1e9 }

// String renders the bandwidth in GB/s or MB/s.
func (bw Bandwidth) String() string {
	switch {
	case bw < 0:
		return "-" + (-bw).String()
	case bw >= Bandwidth(GB):
		return trimFloat(bw.GBpsValue()) + "GB/s"
	case bw >= Bandwidth(MB):
		return trimFloat(float64(bw)/1e6) + "MB/s"
	case bw >= Bandwidth(KB):
		return trimFloat(float64(bw)/1e3) + "KB/s"
	default:
		return fmt.Sprintf("%dB/s", int64(bw))
	}
}

// TimeToSend reports how long a message of the given size occupies a
// channel of this bandwidth: the serialization delay. A zero or negative
// bandwidth yields zero delay (an infinitely fast channel).
func (bw Bandwidth) TimeToSend(size ByteSize) Time {
	if bw <= 0 || size <= 0 {
		return 0
	}
	// ps = bytes * 1e12 / (bytes/s). Compute in big-enough integer space:
	// sizes here are at most a few MB and bandwidths at least ~1 MB/s, so
	// float64 keeps ample precision while avoiding int64 overflow.
	ps := float64(size) * 1e12 / float64(bw)
	if ps >= math.MaxInt64 {
		return Time(math.MaxInt64)
	}
	return Time(math.Round(ps))
}

// Rate reports the bandwidth achieved when volume bytes are moved over the
// span d. A non-positive span yields zero.
func Rate(volume ByteSize, d Time) Bandwidth {
	if d <= 0 {
		return 0
	}
	return Bandwidth(math.Round(float64(volume) * 1e12 / float64(d)))
}

// Interval reports the steady-state gap between messages of the given size
// required to sustain rate bw; it is the pacing quantum used by
// rate-controlled traffic generators (the paper controls rates with NOP
// instructions — this is the simulated analogue). A non-positive rate
// yields an effectively infinite interval.
func Interval(size ByteSize, bw Bandwidth) Time {
	if bw <= 0 {
		return Time(math.MaxInt64)
	}
	return bw.TimeToSend(size)
}
