package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{500 * Picosecond, "500ps"},
		{1240 * Picosecond, "1.24ns"},
		{34300 * Picosecond, "34.3ns"},
		{Microsecond, "1us"},
		{1500 * Nanosecond, "1.5us"},
		{Millisecond, "1ms"},
		{2 * Second, "2s"},
		{-Nanosecond, "-1ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (1500 * Picosecond).Nanoseconds(); got != 1.5 {
		t.Errorf("Nanoseconds() = %v, want 1.5", got)
	}
	if got := Nanos(1.24); got != 1240*Picosecond {
		t.Errorf("Nanos(1.24) = %v, want 1240ps", int64(got))
	}
	if got := Micros(2.5); got != 2500*Nanosecond {
		t.Errorf("Micros(2.5) = %v, want 2500ns", int64(got))
	}
	if got := (3 * Second).Seconds(); got != 3 {
		t.Errorf("Seconds() = %v, want 3", got)
	}
	if got := (5 * Microsecond).Microseconds(); got != 5 {
		t.Errorf("Microseconds() = %v, want 5", got)
	}
}

func TestByteSizeString(t *testing.T) {
	cases := []struct {
		in   ByteSize
		want string
	}{
		{0, "0B"},
		{64, "64B"},
		{32 * KiB, "32KiB"},
		{512 * KiB, "512KiB"},
		{128 * MiB, "128MiB"},
		{GiB, "1GiB"},
		{2 * GB, "2GB"},
		{1500 * KB, "1.5MB"},
		{-KiB, "-1KiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("ByteSize(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestBandwidthString(t *testing.T) {
	if got := GBps(14.9).String(); got != "14.9GB/s" {
		t.Errorf("GBps(14.9).String() = %q", got)
	}
	if got := Bandwidth(250 * MB).String(); got != "250MB/s" {
		t.Errorf("250MB/s: got %q", got)
	}
	if got := Bandwidth(5 * KB).String(); got != "5KB/s" {
		t.Errorf("5KB/s: got %q", got)
	}
	if got := Bandwidth(12).String(); got != "12B/s" {
		t.Errorf("12B/s: got %q", got)
	}
}

func TestTimeToSend(t *testing.T) {
	// 64 B over 64 GB/s should take exactly 1 ns.
	bw := GBps(64)
	if got := bw.TimeToSend(CacheLine); got != Nanosecond {
		t.Errorf("64B @ 64GB/s = %v, want 1ns", got)
	}
	// Zero bandwidth is treated as infinitely fast.
	if got := Bandwidth(0).TimeToSend(CacheLine); got != 0 {
		t.Errorf("zero bandwidth TimeToSend = %v, want 0", got)
	}
	if got := bw.TimeToSend(0); got != 0 {
		t.Errorf("zero size TimeToSend = %v, want 0", got)
	}
}

func TestRateRoundTrip(t *testing.T) {
	// Rate() inverts TimeToSend for exact cases.
	bw := GBps(32)
	d := bw.TimeToSend(1 * MB)
	got := Rate(1*MB, d)
	if math.Abs(got.GBpsValue()-32) > 0.01 {
		t.Errorf("Rate round trip = %v, want ~32GB/s", got)
	}
	if Rate(MB, 0) != 0 {
		t.Error("Rate over zero span should be 0")
	}
}

func TestInterval(t *testing.T) {
	// Sustaining 64 GB/s with 64 B lines needs one line per ns.
	if got := Interval(CacheLine, GBps(64)); got != Nanosecond {
		t.Errorf("Interval = %v, want 1ns", got)
	}
	if got := Interval(CacheLine, 0); got != Time(math.MaxInt64) {
		t.Errorf("Interval at zero rate = %v, want max", got)
	}
}

// Property: serialization delay is monotonic in size and antitonic in rate.
func TestTimeToSendMonotonic(t *testing.T) {
	f := func(a, b uint16, r uint32) bool {
		small, big := ByteSize(a), ByteSize(a)+ByteSize(b)+1
		bw := Bandwidth(r%1000000 + 1000) // >= 1 KB/s
		return bw.TimeToSend(small) <= bw.TimeToSend(big)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(sz uint16, r uint32) bool {
		slow := Bandwidth(r%100000 + 1000)
		fast := slow * 2
		s := ByteSize(sz) + 1
		return fast.TimeToSend(s) <= slow.TimeToSend(s)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

// Property: Rate(v, TimeToSend(v)) recovers the bandwidth within rounding.
func TestRateInvertsTimeToSend(t *testing.T) {
	f := func(v uint32, r uint32) bool {
		vol := ByteSize(v%(1<<20) + 1024)
		bw := Bandwidth(uint64(r)%uint64(100*GB) + uint64(MB))
		d := bw.TimeToSend(vol)
		if d <= 0 {
			return true
		}
		got := Rate(vol, d)
		diff := math.Abs(float64(got-bw)) / float64(bw)
		return diff < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
